#include "cache/amoeba_cache.hh"

#include <algorithm>
#include <bit>

#include "common/log.hh"

namespace protozoa {

const char *
blockStateName(BlockState s)
{
    switch (s) {
      case BlockState::S: return "S";
      case BlockState::E: return "E";
      case BlockState::M: return "M";
    }
    return "?";
}

unsigned
AmoebaBlock::touchedWords() const
{
    return static_cast<unsigned>(
        std::popcount(touched & range.mask()));
}

AmoebaCache::AmoebaCache(const SystemConfig &cfg)
    : numSets(cfg.l1Sets), setBudget(cfg.l1BytesPerSet),
      regionBytes(cfg.regionBytes),
      regionShift(std::countr_zero(cfg.regionBytes)),
      sets(cfg.l1Sets)
{
    PROTO_ASSERT(setBudget >= blockCost(WordRange::full(cfg.regionWords())),
                 "set budget cannot hold a full region");

    // Worst case for the slot pool: the set packed with minimum-size
    // (one-word) blocks. Constructing all slots here makes every later
    // insert/evict allocation-free.
    const unsigned slotCap = setBudget / blockCost(WordRange(0, 0));
    PROTO_ASSERT(slotCap >= 1 && slotCap < 0xffff,
                 "set slot capacity %u out of range", slotCap);
    for (auto &set : sets) {
        set.slots.resize(slotCap);
        set.order.reserve(slotCap);
        set.freeSlots.reserve(slotCap);
        set.slotRegion.assign(slotCap, 0);
        set.slotCover.assign(slotCap, 0);
        set.slotLru.assign(slotCap, 0);
        for (unsigned i = slotCap; i-- > 0;)
            set.freeSlots.push_back(static_cast<std::uint16_t>(i));
    }
}

unsigned
AmoebaCache::blockCost(const WordRange &r)
{
    return kTagBytes + r.bytes();
}

unsigned
AmoebaCache::setOf(Addr region) const
{
    return static_cast<unsigned>((region >> regionShift) % numSets);
}

AmoebaBlock *
AmoebaCache::findCovering(Addr region, unsigned word)
{
    Set &set = sets[setOf(region)];
    if (!((set.coverage >> word) & 1))
        return nullptr;
    for (const std::uint16_t s : set.order) {
        if (set.slotRegion[s] == region &&
            ((set.slotCover[s] >> word) & 1))
            return &set.slots[s];
    }
    return nullptr;
}

void
AmoebaCache::blocksOfRegion(Addr region, BlockPtrs &out)
{
    Set &set = sets[setOf(region)];
    for (const std::uint16_t s : set.order) {
        if (set.slotRegion[s] == region)
            out.push_back(&set.slots[s]);
    }
}

void
AmoebaCache::overlapping(Addr region, const WordRange &r, BlockPtrs &out)
{
    Set &set = sets[setOf(region)];
    const WordMask m = r.mask();
    if (!(set.coverage & m))
        return;
    for (const std::uint16_t s : set.order) {
        if (set.slotRegion[s] == region && (set.slotCover[s] & m))
            out.push_back(&set.slots[s]);
    }
}

bool
AmoebaCache::hasRegion(Addr region)
{
    Set &set = sets[setOf(region)];
    for (const std::uint16_t s : set.order) {
        if (set.slotRegion[s] == region)
            return true;
    }
    return false;
}

bool
AmoebaCache::hasDirtyRegion(Addr region)
{
    Set &set = sets[setOf(region)];
    for (const std::uint16_t s : set.order) {
        if (set.slotRegion[s] == region && set.slots[s].dirty())
            return true;
    }
    return false;
}

bool
AmoebaCache::hasWritableRegion(Addr region)
{
    Set &set = sets[setOf(region)];
    for (const std::uint16_t s : set.order) {
        if (set.slotRegion[s] == region &&
            set.slots[s].state != BlockState::S)
            return true;
    }
    return false;
}

AmoebaBlock
AmoebaCache::takeAt(Set &set, std::size_t pos)
{
    const std::uint16_t s = set.order[pos];
    AmoebaBlock out = std::move(set.slots[s]);
    set.slots[s] = AmoebaBlock();
    set.slotCover[s] = 0;
    set.order.erase(set.order.begin() +
                    static_cast<std::ptrdiff_t>(pos));
    set.freeSlots.push_back(s);
    set.bytesUsed -= blockCost(out.range);
    // Coverage has no per-bit refcount; rebuild it from the compact
    // masks of the survivors (removal is off the steady-state path).
    WordMask cov = 0;
    for (const std::uint16_t live : set.order)
        cov |= set.slotCover[live];
    set.coverage = cov;
    return out;
}

void
AmoebaCache::makeRoom(Addr region, const WordRange &r, Evicted &out)
{
    Set &set = sets[setOf(region)];
    const unsigned need = blockCost(r);

    while (set.bytesUsed + need > setBudget) {
        PROTO_ASSERT(!set.order.empty(), "set over budget while empty");
        std::size_t victim = 0;
        for (std::size_t i = 1; i < set.order.size(); ++i) {
            if (set.slotLru[set.order[i]] <
                set.slotLru[set.order[victim]])
                victim = i;
        }
        out.push_back(takeAt(set, victim));
    }
}

AmoebaBlock *
AmoebaCache::insert(AmoebaBlock blk)
{
    Set &set = sets[setOf(blk.region)];
    const unsigned cost = blockCost(blk.range);
    PROTO_ASSERT(set.bytesUsed + cost <= setBudget,
                 "insert without room (set %u)", setOf(blk.region));
    PROTO_ASSERT(blk.words.size() == blk.range.words(),
                 "block data size mismatch");
    const WordMask m = blk.range.mask();
    if (set.coverage & m) {
        for (const std::uint16_t s : set.order) {
            PROTO_ASSERT(set.slotRegion[s] != blk.region ||
                         !(set.slotCover[s] & m),
                         "overlapping insert into region %llx",
                         static_cast<unsigned long long>(blk.region));
        }
    }
    PROTO_ASSERT(!set.freeSlots.empty(), "set slot pool exhausted");
    blk.lruStamp = ++lruClock;
    const std::uint16_t s = set.freeSlots.back();
    set.freeSlots.pop_back();
    set.slotRegion[s] = blk.region;
    set.slotCover[s] = m;
    set.slotLru[s] = blk.lruStamp;
    set.coverage |= m;
    set.slots[s] = std::move(blk);
    set.order.push_back(s);
    set.bytesUsed += cost;
    return &set.slots[s];
}

AmoebaBlock
AmoebaCache::removeExact(Addr region, const WordRange &r)
{
    Set &set = sets[setOf(region)];
    const WordMask m = r.mask();
    for (std::size_t pos = 0; pos < set.order.size(); ++pos) {
        const std::uint16_t s = set.order[pos];
        // A contiguous mask determines its range, so cover equality
        // is exact-range equality.
        if (set.slotRegion[s] == region && set.slotCover[s] == m)
            return takeAt(set, pos);
    }
    panic("removeExact: block %llx %s not resident",
          static_cast<unsigned long long>(region), r.toString().c_str());
}

void
AmoebaCache::touchLru(AmoebaBlock *blk)
{
    blk->lruStamp = ++lruClock;
    Set &set = sets[setOf(blk->region)];
    set.slotLru[static_cast<std::size_t>(blk - set.slots.data())] =
        blk->lruStamp;
}

std::size_t
AmoebaCache::blockCount() const
{
    std::size_t n = 0;
    for (const auto &set : sets)
        n += set.order.size();
    return n;
}

unsigned
AmoebaCache::setOccupancyBytes(unsigned set_index) const
{
    return sets[set_index].bytesUsed;
}

void
AmoebaCache::placeBlock(AmoebaBlock blk)
{
    Set &set = sets[setOf(blk.region)];
    const unsigned cost = blockCost(blk.range);
    PROTO_ASSERT(set.bytesUsed + cost <= setBudget,
                 "restored block does not fit (set %u)",
                 setOf(blk.region));
    PROTO_ASSERT(!set.freeSlots.empty(), "set slot pool exhausted");
    const WordMask m = blk.range.mask();
    const std::uint16_t s = set.freeSlots.back();
    set.freeSlots.pop_back();
    set.slotRegion[s] = blk.region;
    set.slotCover[s] = m;
    set.slotLru[s] = blk.lruStamp;
    set.coverage |= m;
    set.slots[s] = std::move(blk);
    set.order.push_back(s);
    set.bytesUsed += cost;
}

void
AmoebaCache::saveState(Serializer &s) const
{
    s.writeU64(lruClock);
    s.writeU32(numSets);
    for (const auto &set : sets) {
        s.writeU32(static_cast<std::uint32_t>(set.order.size()));
        // Walk in insertion order so restore reproduces the order
        // array (and hence every scan/victim tie-break) exactly.
        for (const std::uint16_t slot : set.order) {
            const AmoebaBlock &b = set.slots[slot];
            s.writeU64(b.region);
            s.writeRaw(b.range);
            s.writeU8(static_cast<std::uint8_t>(b.state));
            s.writeU64(b.touched);
            s.writeU64(b.fetchPc);
            s.writeU8(b.missWord);
            s.writeU64(b.lruStamp);
            s.writeU32(static_cast<std::uint32_t>(b.words.size()));
            for (std::uint32_t w = 0; w < b.words.size(); ++w)
                s.writeU64(b.words[w]);
        }
    }
}

bool
AmoebaCache::restoreState(Deserializer &d)
{
    PROTO_ASSERT(blockCount() == 0,
                 "cache restore requires a fresh cache");
    lruClock = d.readU64();
    if (d.readU32() != numSets)
        return false;
    for (unsigned si = 0; si < numSets; ++si) {
        const std::uint32_t n = d.readU32();
        if (d.failed() || n > sets[si].slots.size())
            return false;
        for (std::uint32_t i = 0; i < n; ++i) {
            AmoebaBlock b;
            b.region = d.readU64();
            d.readRaw(b.range);
            b.state = static_cast<BlockState>(d.readU8());
            b.touched = d.readU64();
            b.fetchPc = d.readU64();
            b.missWord = d.readU8();
            b.lruStamp = d.readU64();
            const std::uint32_t nw = d.readU32();
            if (d.failed() || nw != b.range.words() ||
                setOf(b.region) != si)
                return false;
            b.words.assign(nw, 0);
            for (std::uint32_t w = 0; w < nw; ++w)
                b.words[w] = d.readU64();
            placeBlock(std::move(b));
        }
    }
    return !d.failed();
}

} // namespace protozoa
