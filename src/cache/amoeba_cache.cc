#include "cache/amoeba_cache.hh"

#include <algorithm>
#include <bit>

#include "common/log.hh"

namespace protozoa {

const char *
blockStateName(BlockState s)
{
    switch (s) {
      case BlockState::S: return "S";
      case BlockState::E: return "E";
      case BlockState::M: return "M";
    }
    return "?";
}

unsigned
AmoebaBlock::touchedWords() const
{
    return static_cast<unsigned>(
        std::popcount(touched & range.mask()));
}

AmoebaCache::AmoebaCache(const SystemConfig &cfg)
    : numSets(cfg.l1Sets), setBudget(cfg.l1BytesPerSet),
      regionBytes(cfg.regionBytes),
      regionShift(std::countr_zero(cfg.regionBytes)),
      sets(cfg.l1Sets)
{
    PROTO_ASSERT(setBudget >= blockCost(WordRange::full(cfg.regionWords())),
                 "set budget cannot hold a full region");
}

unsigned
AmoebaCache::blockCost(const WordRange &r)
{
    return kTagBytes + r.bytes();
}

unsigned
AmoebaCache::setOf(Addr region) const
{
    return static_cast<unsigned>((region >> regionShift) % numSets);
}

AmoebaBlock *
AmoebaCache::findCovering(Addr region, unsigned word)
{
    for (auto &blk : sets[setOf(region)].blocks) {
        if (blk.region == region && blk.range.contains(word))
            return &blk;
    }
    return nullptr;
}

std::vector<AmoebaBlock *>
AmoebaCache::blocksOfRegion(Addr region)
{
    std::vector<AmoebaBlock *> out;
    for (auto &blk : sets[setOf(region)].blocks) {
        if (blk.region == region)
            out.push_back(&blk);
    }
    return out;
}

std::vector<AmoebaBlock *>
AmoebaCache::overlapping(Addr region, const WordRange &r)
{
    std::vector<AmoebaBlock *> out;
    for (auto &blk : sets[setOf(region)].blocks) {
        if (blk.region == region && blk.range.overlaps(r))
            out.push_back(&blk);
    }
    return out;
}

bool
AmoebaCache::hasRegion(Addr region)
{
    for (auto &blk : sets[setOf(region)].blocks) {
        if (blk.region == region)
            return true;
    }
    return false;
}

bool
AmoebaCache::hasDirtyRegion(Addr region)
{
    for (auto &blk : sets[setOf(region)].blocks) {
        if (blk.region == region && blk.dirty())
            return true;
    }
    return false;
}

bool
AmoebaCache::hasWritableRegion(Addr region)
{
    for (auto &blk : sets[setOf(region)].blocks) {
        if (blk.region == region && blk.state != BlockState::S)
            return true;
    }
    return false;
}

std::vector<AmoebaBlock>
AmoebaCache::makeRoom(Addr region, const WordRange &r)
{
    Set &set = sets[setOf(region)];
    const unsigned need = blockCost(r);
    std::vector<AmoebaBlock> evicted;

    while (set.bytesUsed + need > setBudget) {
        PROTO_ASSERT(!set.blocks.empty(), "set over budget while empty");
        auto victim = set.blocks.begin();
        for (auto it = set.blocks.begin(); it != set.blocks.end(); ++it) {
            if (it->lruStamp < victim->lruStamp)
                victim = it;
        }
        set.bytesUsed -= blockCost(victim->range);
        evicted.push_back(std::move(*victim));
        set.blocks.erase(victim);
    }
    return evicted;
}

AmoebaBlock *
AmoebaCache::insert(AmoebaBlock blk)
{
    Set &set = sets[setOf(blk.region)];
    const unsigned cost = blockCost(blk.range);
    PROTO_ASSERT(set.bytesUsed + cost <= setBudget,
                 "insert without room (set %u)", setOf(blk.region));
    PROTO_ASSERT(blk.words.size() == blk.range.words(),
                 "block data size mismatch");
    for (const auto &res : set.blocks) {
        PROTO_ASSERT(res.region != blk.region ||
                     !res.range.overlaps(blk.range),
                     "overlapping insert into region %llx",
                     static_cast<unsigned long long>(blk.region));
    }
    blk.lruStamp = ++lruClock;
    set.blocks.push_back(std::move(blk));
    set.bytesUsed += cost;
    return &set.blocks.back();
}

AmoebaBlock
AmoebaCache::removeExact(Addr region, const WordRange &r)
{
    Set &set = sets[setOf(region)];
    for (auto it = set.blocks.begin(); it != set.blocks.end(); ++it) {
        if (it->region == region && it->range == r) {
            AmoebaBlock out = std::move(*it);
            set.bytesUsed -= blockCost(out.range);
            set.blocks.erase(it);
            return out;
        }
    }
    panic("removeExact: block %llx %s not resident",
          static_cast<unsigned long long>(region), r.toString().c_str());
}

void
AmoebaCache::touchLru(AmoebaBlock *blk)
{
    blk->lruStamp = ++lruClock;
}

std::size_t
AmoebaCache::blockCount() const
{
    std::size_t n = 0;
    for (const auto &set : sets)
        n += set.blocks.size();
    return n;
}

unsigned
AmoebaCache::setOccupancyBytes(unsigned set_index) const
{
    return sets[set_index].bytesUsed;
}

} // namespace protozoa
