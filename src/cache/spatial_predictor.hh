/**
 * @file
 * Fetch-granularity predictors.
 *
 * On every L1 miss the controller asks a predictor what word range of
 * the region to request. The PcSpatial policy is the Amoeba-Cache
 * PC-indexed spatial predictor the paper evaluates with: each entry
 * remembers how far (left/right of the miss word) previous blocks
 * fetched by the same PC were actually used, learning from the touched
 * bitmap of dying blocks.
 */

#ifndef PROTOZOA_CACHE_SPATIAL_PREDICTOR_HH
#define PROTOZOA_CACHE_SPATIAL_PREDICTOR_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/serialize.hh"
#include "common/types.hh"
#include "common/word_range.hh"

namespace protozoa {

class SpatialPredictor
{
  public:
    virtual ~SpatialPredictor() = default;

    /**
     * Predict the fetch range for a miss.
     *
     * @param pc           PC of the missing instruction.
     * @param miss_word    region-relative word index of the miss.
     * @param need         words the access itself requires.
     * @param region_words words per region.
     * @return a range covering @p need, within the region.
     */
    virtual WordRange predict(Pc pc, unsigned miss_word,
                              const WordRange &need,
                              unsigned region_words) = 0;

    /**
     * Learn from a dying block: which words were actually touched.
     *
     * @param pc        PC that fetched the block.
     * @param miss_word anchor word of the original miss.
     * @param touched   absolute word-bitmap of touched words.
     * @param range     the range the block covered.
     */
    virtual void
    learn(Pc pc, unsigned miss_word, WordMask touched,
          const WordRange &range)
    {
        (void)pc; (void)miss_word; (void)touched; (void)range;
    }

    /** Snapshot hooks; stateless predictors serialize nothing. */
    virtual void saveState(Serializer &s) const { (void)s; }
    virtual bool restoreState(Deserializer &d) { (void)d; return true; }
};

/** Always fetch the whole region: conventional-cache behaviour. */
class FullRegionPredictor : public SpatialPredictor
{
  public:
    WordRange predict(Pc pc, unsigned miss_word, const WordRange &need,
                      unsigned region_words) override;
};

/** Always fetch a fixed, aligned number of words. */
class FixedPredictor : public SpatialPredictor
{
  public:
    explicit FixedPredictor(unsigned words) : fetchWords(words) {}

    WordRange predict(Pc pc, unsigned miss_word, const WordRange &need,
                      unsigned region_words) override;

  private:
    unsigned fetchWords;
};

/** Fetch exactly the referenced words: utilization upper bound. */
class WordOnlyPredictor : public SpatialPredictor
{
  public:
    WordRange predict(Pc pc, unsigned miss_word, const WordRange &need,
                      unsigned region_words) override;
};

/**
 * PC-indexed spatial predictor (Amoeba-Cache).
 *
 * Tracks per PC how many words to the left and right of the miss word
 * were touched historically, with a fast-grow / EWMA-shrink update so
 * one streaming phase doesn't permanently inflate the granularity.
 * Cold entries predict the full region, making a cold-start Protozoa
 * mimic MESI exactly (the paper's correctness invariant (i)).
 */
class PcSpatialPredictor : public SpatialPredictor
{
  public:
    explicit PcSpatialPredictor(unsigned table_entries = 1024);

    WordRange predict(Pc pc, unsigned miss_word, const WordRange &need,
                      unsigned region_words) override;

    void learn(Pc pc, unsigned miss_word, WordMask touched,
               const WordRange &range) override;

    void
    saveState(Serializer &s) const override
    {
        s.writeVecRaw(table);
    }

    bool
    restoreState(Deserializer &d) override
    {
        std::vector<Entry> t;
        if (!d.readVecRaw(t) || t.size() != table.size())
            return false;
        table = std::move(t);
        return true;
    }

  private:
    struct Entry
    {
        bool valid = false;
        /** Learned extents, in words, around the miss word. */
        unsigned left = 0;
        unsigned right = 0;
    };

    Entry &entryFor(Pc pc);

    std::vector<Entry> table;
};

/** Factory for the policy selected in the configuration. */
std::unique_ptr<SpatialPredictor> makePredictor(const SystemConfig &cfg);

} // namespace protozoa

#endif // PROTOZOA_CACHE_SPATIAL_PREDICTOR_HH
