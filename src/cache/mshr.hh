/**
 * @file
 * Miss-status holding registers and the eviction writeback buffer.
 *
 * Both structures are indexed at REGION granularity, like the paper's
 * ("our MSHR and cache controller entries are similar to MESI since we
 * index them using the fixed REGION granularity"). The L1 serializes
 * misses per region; the in-order core model makes that one outstanding
 * miss per core.
 *
 * The writeback buffer holds evicted dirty blocks between PUT and
 * WB_ACK so that a racing forwarded probe can still be answered with
 * the freshest data (the probe consults the buffer; the directory later
 * discards the superseded PUT).
 *
 * Storage: the MSHR file is a fixed slot array (stable entry pointers,
 * linear scan over a handful of slots); the writeback buffer is a flat
 * open-addressing region table whose per-region FIFOs live in a pooled
 * arena. Neither allocates in steady state.
 */

#ifndef PROTOZOA_CACHE_MSHR_HH
#define PROTOZOA_CACHE_MSHR_HH

#include <vector>

#include "common/flat_table.hh"
#include "common/log.hh"
#include "common/serialize.hh"
#include "common/types.hh"
#include "common/word_range.hh"
#include "protocol/coherence_msg.hh"

namespace protozoa {

/** One outstanding L1 miss. */
struct MshrEntry
{
    Addr region = 0;
    /** Words the core access needs. */
    WordRange need;
    /** Words requested from the directory (predicted). */
    WordRange pred;
    bool isWrite = false;
    Pc pc = 0;
    /** Core access being satisfied. */
    Addr accessAddr = 0;
    std::uint64_t storeValue = 0;
    Cycle issued = 0;

    /** True when this is a permission-only upgrade of a resident block. */
    bool upgrade = false;
    /**
     * Set when a probe removed the to-be-upgraded block while the
     * upgrade was in flight; a payload-free DATA must then be retried
     * as a full GETX.
     */
    bool upgradeBroken = false;
};

class MshrFile
{
  public:
    explicit MshrFile(unsigned max_entries = 1)
        : slots(max_entries), used(max_entries, 0)
    {
    }

    bool full() const { return live >= slots.size(); }

    MshrEntry *
    alloc(const MshrEntry &entry)
    {
        PROTO_ASSERT(!full(), "MSHR file full");
        PROTO_ASSERT(find(entry.region) == nullptr,
                     "second miss on region with outstanding MSHR");
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (!used[i]) {
                used[i] = 1;
                ++live;
                slots[i] = entry;
                return &slots[i];
            }
        }
        panic("MSHR slot accounting corrupt");
    }

    MshrEntry *
    find(Addr region)
    {
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (used[i] && slots[i].region == region)
                return &slots[i];
        }
        return nullptr;
    }

    const MshrEntry *
    find(Addr region) const
    {
        return const_cast<MshrFile *>(this)->find(region);
    }

    void
    free(Addr region)
    {
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (used[i] && slots[i].region == region) {
                used[i] = 0;
                --live;
                return;
            }
        }
        PROTO_ASSERT(false, "freeing absent MSHR");
    }

    std::size_t size() const { return live; }

    /** Visit every outstanding entry (deadlock-watchdog scan). */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (used[i])
                fn(slots[i]);
        }
    }

    /** Serialize slot occupancy and entries (snapshot subsystem). */
    void
    saveState(Serializer &s) const
    {
        static_assert(std::is_trivially_copyable_v<MshrEntry>);
        s.writeU32(static_cast<std::uint32_t>(slots.size()));
        for (std::size_t i = 0; i < slots.size(); ++i) {
            s.writeU8(used[i]);
            if (used[i])
                s.writeRaw(slots[i]);
        }
    }

    /** Restore into a file of the same capacity. */
    bool
    restoreState(Deserializer &d)
    {
        if (d.readU32() != slots.size())
            return false;
        live = 0;
        for (std::size_t i = 0; i < slots.size(); ++i) {
            used[i] = d.readU8();
            if (used[i] > 1)
                return false;
            if (used[i]) {
                d.readRaw(slots[i]);
                ++live;
            }
        }
        return !d.failed();
    }

  private:
    std::vector<MshrEntry> slots;
    std::vector<std::uint8_t> used;
    std::size_t live = 0;
};

/** A dirty block in flight between eviction PUT and WB_ACK. */
struct PendingWb
{
    DataSegment seg;
    /** Touched bitmap of the evicted block (for traffic accounting). */
    WordMask touched = 0;
    bool last = false;
    bool demoteOwner = false;
};

class WbBuffer
{
  public:
    void
    push(Addr region, PendingWb wb)
    {
        pool.push(*queues.findOrCreate(region), std::move(wb));
    }

    /** Complete the oldest PUT of @p region (its WB_ACK arrived). */
    void
    popFront(Addr region)
    {
        auto *q = queues.find(region);
        PROTO_ASSERT(q && !q->empty(), "WB_ACK without pending PUT");
        pool.popFront(*q);
        if (q->empty())
            queues.erase(region);
    }

    /**
     * Visit the buffered writebacks of @p region overlapping @p r,
     * oldest first. Used to answer forwarded probes racing with an
     * eviction.
     */
    template <typename F>
    void
    forEachOverlapping(Addr region, const WordRange &r, F &&fn) const
    {
        const auto *q = queues.find(region);
        if (!q)
            return;
        pool.forEach(*q, [&](const PendingWb &wb) {
            if (wb.seg.range.overlaps(r))
                fn(wb);
        });
    }

    bool hasPending(Addr region) const { return queues.contains(region); }

    /**
     * Visit every buffered writeback as (region, wb), oldest first
     * within a region; region order is unspecified (hash-table order),
     * so canonicalizing consumers must sort by region themselves.
     */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        queues.forEach(
            [&](Addr region, const PooledFifo<PendingWb>::Queue &q) {
                pool.forEach(q, [&](const PendingWb &wb) {
                    fn(region, wb);
                });
            });
    }

    /**
     * True if a buffered writeback of @p region was NOT collected by a
     * probe for range @p r (i.e. lies entirely outside it). The probe
     * response must then keep this core tracked at the directory, or
     * the in-flight PUT would be classified stale and its dirty data
     * dropped. Only full-region probes collect every segment.
     */
    bool
    hasUncollected(Addr region, const WordRange &r) const
    {
        const auto *q = queues.find(region);
        if (!q)
            return false;
        bool uncollected = false;
        pool.forEach(*q, [&](const PendingWb &wb) {
            if (!wb.seg.range.overlaps(r))
                uncollected = true;
        });
        return uncollected;
    }

    std::size_t
    pendingCount() const
    {
        std::size_t n = 0;
        queues.forEach([&](Addr, const PooledFifo<PendingWb>::Queue &q) {
            n += q.size();
        });
        return n;
    }

    /**
     * Serialize every buffered writeback as (region, wb) in table
     * order, oldest first within a region. Restoring by replaying
     * push() reproduces each region's FIFO exactly; cross-region
     * table order is irrelevant to behaviour (lookups are keyed).
     */
    void
    saveState(Serializer &s) const
    {
        s.writeU32(static_cast<std::uint32_t>(pendingCount()));
        forEach([&](Addr region, const PendingWb &wb) {
            s.writeU64(region);
            s.writeRaw(wb.seg.range);
            s.writeU32(static_cast<std::uint32_t>(wb.seg.words.size()));
            for (std::uint32_t w = 0; w < wb.seg.words.size(); ++w)
                s.writeU64(wb.seg.words[w]);
            s.writeU64(wb.touched);
            s.writeU8(wb.last ? 1 : 0);
            s.writeU8(wb.demoteOwner ? 1 : 0);
        });
    }

    /** Restore into an empty buffer. */
    bool
    restoreState(Deserializer &d)
    {
        PROTO_ASSERT(pendingCount() == 0,
                     "WB buffer restore requires an empty buffer");
        const std::uint32_t n = d.readU32();
        if (d.failed())
            return false;
        for (std::uint32_t i = 0; i < n; ++i) {
            const Addr region = d.readU64();
            PendingWb wb;
            d.readRaw(wb.seg.range);
            const std::uint32_t nw = d.readU32();
            if (d.failed() || nw != wb.seg.range.words())
                return false;
            wb.seg.words.assign(nw, 0);
            for (std::uint32_t w = 0; w < nw; ++w)
                wb.seg.words[w] = d.readU64();
            wb.touched = d.readU64();
            wb.last = d.readU8() != 0;
            wb.demoteOwner = d.readU8() != 0;
            push(region, std::move(wb));
        }
        return !d.failed();
    }

  private:
    AddrTable<PooledFifo<PendingWb>::Queue> queues;
    PooledFifo<PendingWb> pool;
};

} // namespace protozoa

#endif // PROTOZOA_CACHE_MSHR_HH
