/**
 * @file
 * Miss-status holding registers and the eviction writeback buffer.
 *
 * Both structures are indexed at REGION granularity, like the paper's
 * ("our MSHR and cache controller entries are similar to MESI since we
 * index them using the fixed REGION granularity"). The L1 serializes
 * misses per region; the in-order core model makes that one outstanding
 * miss per core.
 *
 * The writeback buffer holds evicted dirty blocks between PUT and
 * WB_ACK so that a racing forwarded probe can still be answered with
 * the freshest data (the probe consults the buffer; the directory later
 * discards the superseded PUT).
 */

#ifndef PROTOZOA_CACHE_MSHR_HH
#define PROTOZOA_CACHE_MSHR_HH

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "common/word_range.hh"
#include "protocol/coherence_msg.hh"

namespace protozoa {

/** One outstanding L1 miss. */
struct MshrEntry
{
    Addr region = 0;
    /** Words the core access needs. */
    WordRange need;
    /** Words requested from the directory (predicted). */
    WordRange pred;
    bool isWrite = false;
    Pc pc = 0;
    /** Core access being satisfied. */
    Addr accessAddr = 0;
    std::uint64_t storeValue = 0;
    Cycle issued = 0;

    /** True when this is a permission-only upgrade of a resident block. */
    bool upgrade = false;
    /**
     * Set when a probe removed the to-be-upgraded block while the
     * upgrade was in flight; a payload-free DATA must then be retried
     * as a full GETX.
     */
    bool upgradeBroken = false;
};

class MshrFile
{
  public:
    explicit MshrFile(unsigned max_entries = 1) : capacity(max_entries) {}

    bool full() const { return entries.size() >= capacity; }

    MshrEntry *
    alloc(const MshrEntry &entry)
    {
        PROTO_ASSERT(!full(), "MSHR file full");
        PROTO_ASSERT(entries.find(entry.region) == entries.end(),
                     "second miss on region with outstanding MSHR");
        auto [it, ok] = entries.emplace(entry.region, entry);
        (void)ok;
        return &it->second;
    }

    MshrEntry *
    find(Addr region)
    {
        auto it = entries.find(region);
        return it == entries.end() ? nullptr : &it->second;
    }

    const MshrEntry *
    find(Addr region) const
    {
        auto it = entries.find(region);
        return it == entries.end() ? nullptr : &it->second;
    }

    void
    free(Addr region)
    {
        const auto n = entries.erase(region);
        PROTO_ASSERT(n == 1, "freeing absent MSHR");
    }

    std::size_t size() const { return entries.size(); }

    /** Visit every outstanding entry (deadlock-watchdog scan). */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        for (const auto &[region, entry] : entries)
            fn(entry);
    }

  private:
    unsigned capacity;
    std::unordered_map<Addr, MshrEntry> entries;
};

/** A dirty block in flight between eviction PUT and WB_ACK. */
struct PendingWb
{
    DataSegment seg;
    /** Touched bitmap of the evicted block (for traffic accounting). */
    WordMask touched = 0;
    bool last = false;
    bool demoteOwner = false;
};

class WbBuffer
{
  public:
    void
    push(Addr region, PendingWb wb)
    {
        pending[region].push_back(std::move(wb));
    }

    /** Complete the oldest PUT of @p region (its WB_ACK arrived). */
    void
    popFront(Addr region)
    {
        auto it = pending.find(region);
        PROTO_ASSERT(it != pending.end() && !it->second.empty(),
                     "WB_ACK without pending PUT");
        it->second.pop_front();
        if (it->second.empty())
            pending.erase(it);
    }

    /**
     * Copies of buffered writebacks of @p region overlapping @p r.
     * Used to answer forwarded probes racing with an eviction.
     */
    std::vector<PendingWb>
    overlappingSegments(Addr region, const WordRange &r) const
    {
        std::vector<PendingWb> out;
        auto it = pending.find(region);
        if (it == pending.end())
            return out;
        for (const auto &wb : it->second) {
            if (wb.seg.range.overlaps(r))
                out.push_back(wb);
        }
        return out;
    }

    bool
    hasPending(Addr region) const
    {
        return pending.find(region) != pending.end();
    }

    /**
     * True if a buffered writeback of @p region was NOT collected by a
     * probe for range @p r (i.e. lies entirely outside it). The probe
     * response must then keep this core tracked at the directory, or
     * the in-flight PUT would be classified stale and its dirty data
     * dropped. Only full-region probes collect every segment.
     */
    bool
    hasUncollected(Addr region, const WordRange &r) const
    {
        auto it = pending.find(region);
        if (it == pending.end())
            return false;
        for (const auto &wb : it->second) {
            if (!wb.seg.range.overlaps(r))
                return true;
        }
        return false;
    }

    std::size_t
    pendingCount() const
    {
        std::size_t n = 0;
        for (const auto &[region, list] : pending)
            n += list.size();
        return n;
    }

  private:
    std::unordered_map<Addr, std::deque<PendingWb>> pending;
};

} // namespace protozoa

#endif // PROTOZOA_CACHE_MSHR_HH
