/**
 * @file
 * Variable-granularity L1 data storage (Amoeba-Cache, MICRO'12).
 *
 * Each set has a byte budget instead of a fixed way count. Blocks are
 * <Region, Start, End> tuples with collocated tags (one word of tag
 * overhead per block, Fig. 2 of the Protozoa paper). Blocks of the same
 * region never overlap. All blocks of a region live in the same set, so
 * the multi-block coherence snoops (CHECK / GATHER, Fig. 3) scan one
 * set only.
 *
 * Storage layout: block payloads are inline (no per-block heap words),
 * and each set is a fixed slot pool — sized at construction for the
 * worst case of minimum-size blocks — plus a small order array that
 * preserves insertion order exactly like the former std::list, while
 * keeping block pointers stable across unrelated inserts and removals.
 * The multi-block snoop helpers fill caller-provided scratch buffers,
 * so the steady-state lookup/evict/insert loop allocates nothing.
 *
 * The fixed-granularity baseline (MESI) is the degenerate case where
 * every block spans its whole region: with the default 288-byte sets
 * and 8-byte tags that is exactly four 64-byte ways.
 */

#ifndef PROTOZOA_CACHE_AMOEBA_CACHE_HH
#define PROTOZOA_CACHE_AMOEBA_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/serialize.hh"
#include "common/small_vec.hh"
#include "common/types.hh"
#include "common/word_range.hh"

namespace protozoa {

/** L1 block coherence state (Table 2, L1 stable states). */
enum class BlockState : std::uint8_t
{
    S,   ///< shared, clean; other L1s may hold overlapping sub-blocks
    E,   ///< exclusive, clean
    M,   ///< dirty; no other L1 holds an overlapping sub-block
};

const char *blockStateName(BlockState s);

/** One variable-granularity cache block; payload words live inline. */
struct AmoebaBlock
{
    Addr region = 0;
    WordRange range;
    BlockState state = BlockState::S;
    /** Words of the region the core actually referenced. */
    WordMask touched = 0;
    /** PC of the miss that fetched this block (predictor training). */
    Pc fetchPc = 0;
    /** Word index of the original miss within the region. */
    std::uint8_t missWord = 0;
    /** LRU timestamp. */
    std::uint64_t lruStamp = 0;
    /** Data payload, indexed by (word - range.start). */
    SmallVec<std::uint64_t, kMaxRegionWords> words;

    bool dirty() const { return state == BlockState::M; }

    std::uint64_t &
    wordAt(unsigned w)
    {
        return words[w - range.start];
    }

    std::uint64_t
    wordAt(unsigned w) const
    {
        return words[w - range.start];
    }

    /** Words of this block the core touched / did not touch. */
    unsigned touchedWords() const;
    unsigned untouchedWords() const { return range.words() - touchedWords(); }
};

class AmoebaCache
{
  public:
    explicit AmoebaCache(const SystemConfig &cfg);

    /** Per-block tag/metadata overhead charged against the set budget. */
    static constexpr unsigned kTagBytes = 8;

    /**
     * Inline capacity of the snoop scratch buffers: the default
     * 288-byte set holds at most 18 minimum-size blocks. Larger
     * configured budgets spill the scratch vector to the heap, which
     * is correct but no longer allocation-free.
     */
    static constexpr unsigned kScratchBlocks = 20;

    /** Caller-provided scratch for multi-block snoop results. */
    using BlockPtrs = SmallVec<AmoebaBlock *, kScratchBlocks>;
    /** Caller-provided scratch for eviction victims. */
    using Evicted = SmallVec<AmoebaBlock, kScratchBlocks>;

    /** Set index for a region. */
    unsigned setOf(Addr region) const;

    /** The single block containing @p word of @p region, or nullptr. */
    AmoebaBlock *findCovering(Addr region, unsigned word);

    /**
     * Append all blocks of @p region (non-overlapping by invariant) to
     * @p out. Pointers stay valid until one of them is removed.
     */
    void blocksOfRegion(Addr region, BlockPtrs &out);

    /** Append the blocks of @p region overlapping @p r to @p out. */
    void overlapping(Addr region, const WordRange &r, BlockPtrs &out);

    bool hasRegion(Addr region);
    /** True when any block of @p region is dirty. */
    bool hasDirtyRegion(Addr region);
    /**
     * True when any block of @p region still confers write permission
     * (M, or E which can silently upgrade to M).
     */
    bool hasWritableRegion(Addr region);

    /**
     * Evict LRU blocks from the target set until a block of @p r words
     * (plus tag) fits, appending the victims to @p out oldest first.
     */
    void makeRoom(Addr region, const WordRange &r, Evicted &out);

    /**
     * Insert a block. Space must already exist (call makeRoom) and the
     * block must not overlap any same-region resident block.
     * @return pointer to the resident copy (stable until removal).
     */
    AmoebaBlock *insert(AmoebaBlock blk);

    /** Extract the exact block (@p region, @p r) from the cache. */
    AmoebaBlock removeExact(Addr region, const WordRange &r);

    /** Refresh the LRU stamp of @p blk. */
    void touchLru(AmoebaBlock *blk);

    /** Apply @p fn to every resident block (stats finalization). */
    template <typename F>
    void
    forEach(F &&fn)
    {
        for (auto &set : sets)
            for (const std::uint16_t s : set.order)
                fn(set.slots[s]);
    }

    std::size_t blockCount() const;
    unsigned setOccupancyBytes(unsigned set_index) const;
    unsigned bytesPerSet() const { return setBudget; }

    /**
     * Serialize every resident block (exact LRU stamps and per-set
     * insertion order included) plus the LRU clock.
     */
    void saveState(Serializer &s) const;
    /**
     * Rebuild from a snapshot. Must be called on a freshly-constructed
     * cache of the same geometry; reproduces insertion order, LRU
     * stamps and all derived metadata exactly.
     */
    bool restoreState(Deserializer &d);

  private:
    /**
     * One set: a fixed pool of block slots plus the insertion-order
     * index array. Slot addresses never change, so block pointers
     * remain stable exactly as with the former std::list; removing an
     * order entry shifts only 16-bit indices.
     *
     * The scan-heavy lookups never touch the wide AmoebaBlock slots
     * until a candidate matches: slotRegion/slotCover/slotLru mirror
     * the tag, range mask, and LRU stamp of each live slot in compact
     * parallel arrays, and `coverage` holds the OR of every live
     * block's word mask so a snoop for words the set does not hold
     * anywhere is rejected with a single AND. Entries of freed slots
     * are stale but unreachable (scans walk `order` only).
     */
    struct Set
    {
        std::vector<AmoebaBlock> slots;
        std::vector<std::uint16_t> order;
        std::vector<std::uint16_t> freeSlots;
        std::vector<Addr> slotRegion;
        std::vector<WordMask> slotCover;
        std::vector<std::uint64_t> slotLru;
        unsigned bytesUsed = 0;
        /** OR of live blocks' range masks, across all regions. */
        WordMask coverage = 0;
    };

    static unsigned blockCost(const WordRange &r);

    /** Remove order position @p pos of @p set; returns the block. */
    AmoebaBlock takeAt(Set &set, std::size_t pos);

    /** Insert preserving blk.lruStamp (snapshot restore path). */
    void placeBlock(AmoebaBlock blk);

    unsigned numSets;
    unsigned setBudget;
    unsigned regionBytes;
    unsigned regionShift;
    std::uint64_t lruClock = 0;
    std::vector<Set> sets;
};

} // namespace protozoa

#endif // PROTOZOA_CACHE_AMOEBA_CACHE_HH
