// MshrFile and WbBuffer are header-only; this translation unit verifies
// the header is self-contained.
#include "cache/mshr.hh"
