#include "cache/spatial_predictor.hh"

#include <algorithm>
#include <bit>

#include "common/log.hh"

namespace protozoa {

WordRange
FullRegionPredictor::predict(Pc, unsigned, const WordRange &need,
                             unsigned region_words)
{
    WordRange out = WordRange::full(region_words);
    PROTO_ASSERT(out.covers(need), "need outside region");
    return out;
}

WordRange
FixedPredictor::predict(Pc, unsigned miss_word, const WordRange &need,
                        unsigned region_words)
{
    const unsigned chunk = std::min(fetchWords, region_words);
    const unsigned start = (miss_word / chunk) * chunk;
    WordRange out(start, std::min(start + chunk - 1, region_words - 1));
    return out.span(need);
}

WordRange
WordOnlyPredictor::predict(Pc, unsigned, const WordRange &need, unsigned)
{
    return need;
}

PcSpatialPredictor::PcSpatialPredictor(unsigned table_entries)
    : table(table_entries)
{
    PROTO_ASSERT(table_entries > 0, "empty predictor table");
}

PcSpatialPredictor::Entry &
PcSpatialPredictor::entryFor(Pc pc)
{
    // Fibonacci hash of the PC (word-aligned PCs have dead low bits).
    const std::uint64_t h = (pc >> 2) * 0x9e3779b97f4a7c15ULL;
    return table[h % table.size()];
}

WordRange
PcSpatialPredictor::predict(Pc pc, unsigned miss_word,
                            const WordRange &need, unsigned region_words)
{
    const Entry &e = entryFor(pc);
    if (!e.valid)
        return WordRange::full(region_words);

    const unsigned start = miss_word >= e.left ? miss_word - e.left : 0;
    const unsigned end = std::min(miss_word + e.right, region_words - 1);
    return WordRange(start, end).span(need);
}

void
PcSpatialPredictor::learn(Pc pc, unsigned miss_word, WordMask touched,
                          const WordRange &range)
{
    // The block may have died untouched (e.g. invalidated before use);
    // learn the minimal granularity in that case.
    touched &= range.mask();
    unsigned lo = miss_word;
    unsigned hi = miss_word;
    if (touched != 0) {
        lo = static_cast<unsigned>(std::countr_zero(touched));
        hi = (kWordMaskBits - 1) -
             static_cast<unsigned>(std::countl_zero(touched));
    }

    const unsigned new_left = miss_word >= lo ? miss_word - lo : 0;
    const unsigned new_right = hi >= miss_word ? hi - miss_word : 0;

    Entry &e = entryFor(pc);
    if (!e.valid) {
        e.valid = true;
        e.left = new_left;
        e.right = new_right;
        return;
    }
    // Grow immediately (spatial locality discovered), shrink by EWMA so
    // a single sparse use doesn't discard a useful wide granularity.
    e.left = new_left > e.left ? new_left : (e.left + new_left) / 2;
    e.right = new_right > e.right ? new_right
                                  : (e.right + new_right) / 2;
}

std::unique_ptr<SpatialPredictor>
makePredictor(const SystemConfig &cfg)
{
    switch (cfg.predictor) {
      case PredictorKind::FullRegion:
        return std::make_unique<FullRegionPredictor>();
      case PredictorKind::Fixed:
        return std::make_unique<FixedPredictor>(cfg.fixedFetchWords);
      case PredictorKind::PcSpatial:
        return std::make_unique<PcSpatialPredictor>();
      case PredictorKind::WordOnly:
        return std::make_unique<WordOnlyPredictor>();
    }
    panic("unknown predictor kind");
}

} // namespace protozoa
